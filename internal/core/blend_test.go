package core

import (
	"math"
	"testing"

	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/cluster"
)

// blendTestFitted builds the s5/w1 fit of the engine pins — the blend
// tests reuse that exact configuration so the below-threshold path can be
// checked bit-identically against fitPins.
func blendTestFitted(t *testing.T) *Fitted {
	t.Helper()
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
	o := cluster.DefaultOracle()
	o.NoiseStdDev = 0.02
	o.MemoryBudgetBytes = 0
	opts := testOptions(0.1)
	opts.Sampling.Seed = 5
	opts.BSP = bsp.Config{Workers: 1, Oracle: &o, Seed: 5}
	fitted, err := New(opts).Fit(pr, g)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return fitted
}

// TestBlendRegimeSwitch pins the Ellis-style regime rule: identical
// seeds, K−1 observations → the sample-fit prediction, bit-identical to
// the engine pins; K observations → the observation-weighted refit,
// which moves the prediction toward the observed runtimes.
func TestBlendRegimeSwitch(t *testing.T) {
	fitted := blendTestFitted(t)
	g := testGraphBA()
	base, err := fitted.Extrapolate(g, 0)
	if err != nil {
		t.Fatalf("Extrapolate: %v", err)
	}

	// A deterministic observation stream clustered 25% above the
	// sample-fit estimate — the systematic extrapolation bias feedback
	// exists to correct.
	target := base.SuperstepSeconds * 1.25
	obs := []float64{
		target * 0.98, target * 1.01, target * 0.99, target * 1.02, target,
	}

	// K−1 observations: the extrapolation regime answers, and the
	// per-iteration predictions carry the exact float64 bits the engine
	// pins froze.
	below, err := fitted.ExtrapolateBlended(g, 0, obs[:DefaultObservationThreshold-1], 0)
	if err != nil {
		t.Fatalf("ExtrapolateBlended (below threshold): %v", err)
	}
	if below.Runtime.Regime != RegimeExtrapolation {
		t.Errorf("below threshold: regime %q, want %q", below.Runtime.Regime, RegimeExtrapolation)
	}
	if below.Runtime.Observations != DefaultObservationThreshold-1 {
		t.Errorf("below threshold: observations %d, want %d",
			below.Runtime.Observations, DefaultObservationThreshold-1)
	}
	if got, want := fitFingerprint(t, fitted, below.PerIterationSeconds), fitPins["s5/w1"]; got != want {
		t.Errorf("below threshold: fingerprint %s, pinned %s — the no-blend path moved bit-wise", got, want)
	}
	for i := range base.PerIterationSeconds {
		if base.PerIterationSeconds[i] != below.PerIterationSeconds[i] {
			t.Fatalf("below threshold: per-iteration %d differs from plain Extrapolate", i)
		}
	}

	// K observations: the interpolation regime refits, and the blended
	// estimate lands strictly closer to the observed runtimes.
	at, err := fitted.ExtrapolateBlended(g, 0, obs, 0)
	if err != nil {
		t.Fatalf("ExtrapolateBlended (at threshold): %v", err)
	}
	if at.Runtime.Regime != RegimeInterpolation {
		t.Errorf("at threshold: regime %q, want %q", at.Runtime.Regime, RegimeInterpolation)
	}
	if at.Runtime.Observations != DefaultObservationThreshold {
		t.Errorf("at threshold: observations %d, want %d",
			at.Runtime.Observations, DefaultObservationThreshold)
	}
	baseErr := math.Abs(base.SuperstepSeconds - target)
	blendErr := math.Abs(at.SuperstepSeconds - target)
	if blendErr >= baseErr {
		t.Errorf("blended error %.4f not below sample-fit error %.4f (pred %.4f vs %.4f, target %.4f)",
			blendErr, baseErr, at.SuperstepSeconds, base.SuperstepSeconds, target)
	}
	if at.SuperstepSeconds == base.SuperstepSeconds {
		t.Error("at threshold: prediction did not move")
	}
}

// TestBlendObservationOrderInvariant pins that the blend is a pure
// function of the observation multiset, not of arrival order.
func TestBlendObservationOrderInvariant(t *testing.T) {
	fitted := blendTestFitted(t)
	g := testGraphBA()
	obs := []float64{40, 44, 38, 46, 42}
	rev := []float64{42, 46, 38, 44, 40}
	a, err := fitted.ExtrapolateBlended(g, 0, obs, 0)
	if err != nil {
		t.Fatalf("ExtrapolateBlended: %v", err)
	}
	b, err := fitted.ExtrapolateBlended(g, 0, rev, 0)
	if err != nil {
		t.Fatalf("ExtrapolateBlended (reordered): %v", err)
	}
	if a.SuperstepSeconds != b.SuperstepSeconds {
		t.Errorf("prediction depends on observation order: %v vs %v",
			a.SuperstepSeconds, b.SuperstepSeconds)
	}
	if a.Runtime != b.Runtime {
		t.Errorf("distribution depends on observation order: %+v vs %+v", a.Runtime, b.Runtime)
	}
}

// TestDistributionShape checks the normal-approximation bookkeeping:
// p50 at the mean, p95 = mean + z95·σ, and deadline probabilities that
// behave like a CDF.
func TestDistributionShape(t *testing.T) {
	d := newDistribution(100, 25, RegimeInterpolation, 8)
	if d.StdDevSeconds != 5 {
		t.Fatalf("stddev %v, want 5", d.StdDevSeconds)
	}
	if d.P50Seconds != 100 {
		t.Errorf("p50 %v, want 100", d.P50Seconds)
	}
	if want := 100 + z95*5; d.P95Seconds != want {
		t.Errorf("p95 %v, want %v", d.P95Seconds, want)
	}
	if got := d.ProbabilityWithin(100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(≤mean) = %v, want 0.5", got)
	}
	if got := d.ProbabilityWithin(d.P95Seconds); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("P(≤p95) = %v, want 0.95", got)
	}
	if d.ProbabilityWithin(90) >= d.ProbabilityWithin(110) {
		t.Error("ProbabilityWithin is not monotone in the deadline")
	}
	if got := d.ProbabilityWithin(0); got != 0 {
		t.Errorf("P(≤0) = %v, want 0", got)
	}

	// Degenerate spread: a step function at the mean.
	point := newDistribution(100, 0, RegimeExtrapolation, 0)
	if point.ProbabilityWithin(99) != 0 || point.ProbabilityWithin(100) != 1 {
		t.Error("zero-spread distribution is not a step at the mean")
	}
}
