package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"predict/internal/algorithms"
	"predict/internal/parallel"
)

// TestFitParallelMatchesSequential is the parallel-fit invariant: at every
// parallelism level the fitted model — coefficients, intercept, selected
// features, R2 — and the downstream predictions are bit-identical to the
// sequential path, because each sample pipeline's randomness is fixed by
// its ratio index before execution. Three base seeds guard against a
// lucky collision at one seed.
func TestFitParallelMatchesSequential(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	for _, seed := range []uint64{3, 11, 77} {
		fitAt := func(parallelism int) (coeffs map[string]float64, intercept float64, iters int, perIter []float64) {
			t.Helper()
			opts := testOptions(0.1)
			opts.Sampling.Seed = seed
			opts.Parallelism = parallelism
			fitted, err := New(opts).Fit(pr, g)
			if err != nil {
				t.Fatalf("seed %d parallelism %d: Fit: %v", seed, parallelism, err)
			}
			pred, err := fitted.Extrapolate(g, 0)
			if err != nil {
				t.Fatalf("seed %d parallelism %d: Extrapolate: %v", seed, parallelism, err)
			}
			raw, ic := fitted.Model.Coefficients()
			coeffs = make(map[string]float64, len(raw))
			for name, c := range raw {
				coeffs[string(name)] = c
			}
			return coeffs, ic, fitted.Iterations, pred.PerIterationSeconds
		}

		seqC, seqI, seqIters, seqPred := fitAt(1)
		for _, parallelism := range []int{2, 4} {
			parC, parI, parIters, parPred := fitAt(parallelism)
			if !reflect.DeepEqual(seqC, parC) {
				t.Errorf("seed %d: coefficients diverge at parallelism %d:\nseq %v\npar %v",
					seed, parallelism, seqC, parC)
			}
			if seqI != parI {
				t.Errorf("seed %d: intercept diverges at parallelism %d: %v vs %v",
					seed, parallelism, seqI, parI)
			}
			if seqIters != parIters {
				t.Errorf("seed %d: iteration count diverges at parallelism %d: %d vs %d",
					seed, parallelism, seqIters, parIters)
			}
			if !reflect.DeepEqual(seqPred, parPred) {
				t.Errorf("seed %d: per-iteration predictions diverge at parallelism %d",
					seed, parallelism)
			}
		}
	}
}

// TestFitSharedPool exercises Options.Pool, the path the service uses:
// two predictors sharing one pool must produce the same model as private
// pools.
func TestFitSharedPool(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	private := testOptions(0.1)
	private.Parallelism = 1
	want, err := New(private).Fit(pr, g)
	if err != nil {
		t.Fatal(err)
	}

	shared := testOptions(0.1)
	shared.Pool = parallel.NewPool(2)
	got, err := New(shared).Fit(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	wantC, wantI := want.Model.Coefficients()
	gotC, gotI := got.Model.Coefficients()
	if !reflect.DeepEqual(wantC, gotC) || wantI != gotI {
		t.Errorf("shared-pool fit diverges: %v/%v vs %v/%v", gotC, gotI, wantC, wantI)
	}
}

// TestFitContextCancelled verifies a cancelled context aborts the fit.
func TestFitContextCancelled(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(testOptions(0.1)).FitContext(ctx, pr, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FitContext on cancelled ctx = %v, want context.Canceled", err)
	}
}
