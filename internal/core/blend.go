// Closed-loop blending. A Fitted alone extrapolates from sample runs —
// the paper's regime, where no full-scale run of the workload has ever
// been observed. Once actual runtimes start flowing back (the service's
// /observe endpoint), the predictor holds data *at* the prediction point,
// and extrapolation gives way to interpolation: the cost model's
// coefficients are refitted with the observed totals folded into the
// training set, so repeated feedback pulls predictions toward reality.
//
// The switch follows Ellis's density rule (see SNIPPETS.md §2): with
// fewer than DefaultObservationThreshold observations the analytic
// sample-fit model answers — bit-identical to plain Extrapolate, so the
// no-feedback path never moves — and at the threshold the data-driven
// refit takes over. Either regime also reports a runtime Distribution:
// the regression's residual variance summed over the predicted iteration
// count, plus (in the interpolation regime) the sampling error of the
// observed mean, turned into p50/p95 quantiles and deadline
// probabilities under a normal approximation.
package core

import (
	"fmt"
	"math"
	"sort"

	"predict/internal/costmodel"
	"predict/internal/features"
	"predict/internal/graph"
)

// DefaultObservationThreshold is the default number of observed actual
// runtimes at which a model key switches from the extrapolation regime
// (pure sample-fit, the paper's pipeline) to the interpolation regime
// (observation-weighted refit). Five mirrors the density rule of Ellis:
// up to five distinct observed points, trust the analytic model; beyond,
// the data speaks for itself.
const DefaultObservationThreshold = 5

// Blend regime labels, reported on Distribution.Regime and the service's
// /predict and /stats responses.
const (
	// RegimeExtrapolation marks a prediction answered purely from the
	// sample-fit model (fewer observations than the threshold).
	RegimeExtrapolation = "extrapolation"
	// RegimeInterpolation marks a prediction answered from the
	// observation-weighted refit.
	RegimeInterpolation = "interpolation"
)

// z95 is the 95th-percentile quantile of the standard normal
// distribution, used to turn a standard deviation into a p95 bound.
const z95 = 1.6448536269514722

// Distribution summarizes a prediction's uncertainty: a normal
// approximation around the point estimate, wide enough to cover the
// regression's per-iteration noise and — in the interpolation regime —
// the sampling error of the observed runtimes.
type Distribution struct {
	// MeanSeconds is the point estimate (equal to SuperstepSeconds).
	MeanSeconds float64
	// StdDevSeconds is the approximation's standard deviation.
	StdDevSeconds float64
	// P50Seconds and P95Seconds are the median and 95th-percentile
	// runtime under the approximation.
	P50Seconds float64
	P95Seconds float64
	// Regime is RegimeExtrapolation or RegimeInterpolation.
	Regime string
	// Observations is how many observed runtimes informed the blend.
	Observations int
}

// ProbabilityWithin returns P(runtime <= deadline) under the
// distribution — the probability a run meets an SLA deadline. With zero
// spread the answer degenerates to a step at the mean.
func (d Distribution) ProbabilityWithin(deadline float64) float64 {
	if deadline <= 0 {
		return 0
	}
	if d.StdDevSeconds <= 0 {
		if d.MeanSeconds <= deadline {
			return 1
		}
		return 0
	}
	z := (deadline - d.MeanSeconds) / d.StdDevSeconds
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// newDistribution builds the normal approximation around mean with the
// given variance.
func newDistribution(mean, variance float64, regime string, observations int) Distribution {
	sd := 0.0
	if variance > 0 {
		sd = math.Sqrt(variance)
	}
	return Distribution{
		MeanSeconds:   mean,
		StdDevSeconds: sd,
		P50Seconds:    mean,
		P95Seconds:    mean + z95*sd,
		Regime:        regime,
		Observations:  observations,
	}
}

// meanVariance returns the sample mean and unbiased sample variance of
// xs (zero variance below two points).
func meanVariance(xs []float64) (mean, variance float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, ss / float64(n-1)
}

// ExtrapolateBlended is Extrapolate with closed-loop feedback: it prices
// g like Extrapolate does, then — given the observed actual runtimes of
// this exact model key — selects a regime. Below threshold observations
// (zero selects DefaultObservationThreshold) the sample-fit prediction
// stands, bit-identical to Extrapolate, and only the Runtime distribution
// is added. At or above the threshold the model's selected feature
// subset is refitted over the original training rows plus one row per
// observed iteration, and the refitted model re-prices the run.
//
// Observed totals are spread over iterations in proportion to the
// sample-fit model's per-iteration shape (uniformly when the shape sums
// to zero): the observation stream reports end-to-end superstep seconds,
// but the regression trains on per-iteration rows.
func (f *Fitted) ExtrapolateBlended(g *graph.Graph, workers int, observed []float64, threshold int) (*Prediction, error) {
	if threshold <= 0 {
		threshold = DefaultObservationThreshold
	}
	pred, err := f.Extrapolate(g, workers)
	if err != nil {
		return nil, err
	}
	iters := float64(len(pred.PerIterationSeconds))
	if len(observed) < threshold {
		pred.Runtime = newDistribution(pred.SuperstepSeconds,
			iters*f.Model.ResidualVariance(),
			RegimeExtrapolation, len(observed))
		return pred, nil
	}

	// Interpolation regime: fold the observations into the training set
	// and refit the already-selected feature subset. Selection is not
	// re-run — its greedy path is sensitive to single rows, and feedback
	// must move predictions monotonically toward the observed mean, not
	// jump between structural hypotheses.
	if workers <= 0 {
		workers = f.SampleWorkers
	}
	scale, shareFactor, _, err := f.extrapolationScale(g, workers)
	if err != nil {
		return nil, err
	}
	// Full-scale feature vectors, one per sample-run iteration — the x
	// side of every observation-derived row.
	vectors := make([]features.Vector, len(f.IterFeatures))
	for i, it := range f.IterFeatures {
		vectors[i] = scale.Apply(it.Vector).RescaleShare(shareFactor)
	}
	// The sample-fit per-iteration shape distributes each observed total.
	var baseTotal float64
	for _, s := range pred.PerIterationSeconds {
		baseTotal += s
	}
	obs := append([]float64(nil), observed...)
	sort.Float64s(obs) // insensitive to arrival order
	training := make([]costmodel.TrainingRun, 0, len(obs)+1)
	training = append(training, costmodel.TrainingRun{
		Source: "sample", Iters: f.TrainingRows,
	})
	for _, total := range obs {
		run := costmodel.TrainingRun{Source: "observed"}
		for i := range vectors {
			secs := total / iters
			if baseTotal > 0 {
				secs = total * pred.PerIterationSeconds[i] / baseTotal
			}
			run.Iters = append(run.Iters, features.IterationFeatures{
				Vector:  vectors[i],
				Seconds: secs,
			})
		}
		training = append(training, run)
	}
	blended, err := f.Model.Refit(training)
	if err != nil {
		return nil, fmt.Errorf("core: blending observations: %w", err)
	}

	// Re-price through the blended model.
	pred.Model = blended
	pred.SuperstepSeconds = 0
	for i, v := range vectors {
		secs := blended.PredictIteration(v)
		pred.PerIterationSeconds[i] = secs
		pred.SuperstepSeconds += secs
	}
	// Spread: the blended regression's per-iteration noise over the run,
	// plus the standard error of the observed mean — the two uncertainty
	// sources feedback cannot eliminate immediately.
	_, obsVar := meanVariance(obs)
	variance := iters*blended.ResidualVariance() + obsVar/float64(len(obs))
	pred.Runtime = newDistribution(pred.SuperstepSeconds, variance,
		RegimeInterpolation, len(obs))
	return pred, nil
}
