package core

import (
	"bytes"
	"testing"

	"predict/internal/algorithms"
	"predict/internal/history"
)

// TestFitExtrapolateMatchesPredict pins the refactor invariant: Predict
// must be exactly Fit followed by Extrapolate at the sample cluster size.
func TestFitExtrapolateMatchesPredict(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	pred, err := New(testOptions(0.1)).Predict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := New(testOptions(0.1)).Fit(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	split, err := fitted.Extrapolate(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if split.Iterations != pred.Iterations {
		t.Errorf("iterations: split %d, direct %d", split.Iterations, pred.Iterations)
	}
	if split.SuperstepSeconds != pred.SuperstepSeconds {
		t.Errorf("superstep seconds: split %g, direct %g",
			split.SuperstepSeconds, pred.SuperstepSeconds)
	}
	if split.PredictedRemoteMessageBytes != pred.PredictedRemoteMessageBytes {
		t.Errorf("remote bytes: split %g, direct %g",
			split.PredictedRemoteMessageBytes, pred.PredictedRemoteMessageBytes)
	}
	if split.CriticalShareFull != pred.CriticalShareFull {
		t.Errorf("critical share: split %g, direct %g",
			split.CriticalShareFull, pred.CriticalShareFull)
	}
}

// TestExtrapolateWhatIfWorkers verifies the capacity-planning axis: the
// same fitted model must predict shorter runtimes on larger what-if
// clusters (smaller critical-path shares), without refitting.
func TestExtrapolateWhatIfWorkers(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	fitted, err := New(testOptions(0.1)).Fit(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, workers := range []int{2, 4, 8, 16} {
		pred, err := fitted.Extrapolate(g, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if pred.Iterations != fitted.Iterations {
			t.Errorf("workers=%d changed iterations: %d", workers, pred.Iterations)
		}
		if i > 0 && pred.SuperstepSeconds >= prev {
			t.Errorf("workers=%d: %g s not below %g s at the previous size",
				workers, pred.SuperstepSeconds, prev)
		}
		prev = pred.SuperstepSeconds
	}
}

// TestFittedRecordRoundTrip persists a Fitted through internal/history and
// verifies the rebuilt model extrapolates identically: the training matrix
// refits to the same regression.
func TestFittedRecordRoundTrip(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	fitted, err := New(testOptions(0.1)).Fit(pr, g)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := history.Write(&buf, fitted.Record("key-1", "BA test graph")); err != nil {
		t.Fatal(err)
	}
	records, err := history.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Kind != "model" || records[0].Model == nil {
		t.Fatalf("round trip produced %+v", records)
	}
	rebuilt, err := FittedFromRecord(records[0])
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Iterations != fitted.Iterations {
		t.Errorf("iterations: rebuilt %d, original %d", rebuilt.Iterations, fitted.Iterations)
	}
	if rebuilt.Model.R2() != fitted.Model.R2() {
		t.Errorf("R2: rebuilt %g, original %g", rebuilt.Model.R2(), fitted.Model.R2())
	}

	orig, err := fitted.Extrapolate(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rebuilt.Extrapolate(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.SuperstepSeconds != orig.SuperstepSeconds {
		t.Errorf("superstep seconds: rebuilt %g, original %g",
			back.SuperstepSeconds, orig.SuperstepSeconds)
	}
	if back.PredictedRemoteMessageBytes != orig.PredictedRemoteMessageBytes {
		t.Errorf("remote bytes: rebuilt %g, original %g",
			back.PredictedRemoteMessageBytes, orig.PredictedRemoteMessageBytes)
	}
}

// TestFittedFromRecordRejectsPlainRuns guards the kind check.
func TestFittedFromRecordRejectsPlainRuns(t *testing.T) {
	if _, err := FittedFromRecord(history.Record{Dataset: "x"}); err == nil {
		t.Error("plain run record accepted as model record")
	}
}
